// Ablation C — the private-instruction optimization for lock-based code
// (paper §5 "private accesses" + §7 "treating private instructions (those
// inside a lock) separately from shared instructions").
//
// Same lock-based B+-tree, three persistence schemes:
//   persist-at-release  — in-lock stores are private; one batched
//                         pwb-set + single pfence before the lock release
//   persist-every-store — naive: every in-lock store treated as a shared
//                         p-store (flush + fence each time)
//   non-persistent      — volatile upper bound
#include "common.hpp"
#include "ds/locked_bptree.hpp"

namespace {

using namespace flit;
using namespace flit::bench;
using K = std::int64_t;

template <class Mode>
void run_mode(const BenchEnv& env, Table& table) {
  using Tree = ds::LockedBPlusTree<K, K, Mode>;
  std::vector<std::string> row{Mode::name};
  for (const double upd : {5.0, 50.0}) {
    const WorkloadConfig cfg = env.config(upd, 10'000);
    const RunResult r = run_point([] { return Tree(); }, cfg);
    row.push_back(Table::fmt(r.mops(), 3));
    if (upd == 50.0) {
      row.push_back(Table::fmt(r.pwbs_per_op(), 3));
      row.push_back(Table::fmt(
          r.total_ops > 0 ? static_cast<double>(r.persistence.pfences) /
                                static_cast<double>(r.total_ops)
                          : 0,
          3));
    }
  }
  table.add_row(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  Table table({"scheme", "5%-updates Mops", "50%-updates Mops",
               "pwbs/op @50%", "pfences/op @50%"});
  run_mode<ds::PersistAtRelease>(env, table);
  run_mode<ds::PersistEveryStore>(env, table);
  run_mode<ds::NoPersistence>(env, table);
  table.print(
      "Ablation C: private-instruction optimization, lock-based B+-tree "
      "(10K keys)");
  table.print_csv("ablC");
  std::printf(
      "\nExpected shape: persist-at-release issues a fraction of the\n"
      "naive scheme's pwbs/pfences and sits much closer to the\n"
      "non-persistent bound.\n");
  return 0;
}
