// Figure 5 — tuning the flit-HT size.
//
// Paper: "Throughput shown is for the automatic BST with 10K keys", three
// update ratios (0%, 5%, 50%), flit-HT sizes 4KB..64MB. Expected shape:
// at 0% updates bigger tables are (slightly) worse (cache footprint); from
// 5% updates the 4KB table collapses (cache-line collisions on packed
// counters); ~1MB is the sweet spot.
#include "common.hpp"
#include "ds/natarajan_bst.hpp"

namespace {

using namespace flit;
using namespace flit::bench;

using Bst = ds::NatarajanBst<std::int64_t, std::int64_t, HashedWords,
                             Automatic>;

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  const std::uint64_t size = env.args.full ? 10'000 : 10'000;

  const std::size_t sizes_kb[] = {4, 64, 1024, 16 * 1024, 64 * 1024};
  Table table({"ht-size", "0%-updates Mops", "5%-updates Mops",
               "50%-updates Mops"});

  for (const std::size_t kb : sizes_kb) {
    HashedCounterTable::instance().configure(kb * 1024, /*stride=*/1);
    std::vector<std::string> row;
    char label[32];
    std::snprintf(label, sizeof(label), "%zuKB", kb);
    row.emplace_back(label);
    for (const double upd : {0.0, 5.0, 50.0}) {
      const RunResult r =
          run_point([] { return Bst(); }, env.config(upd, size));
      row.push_back(Table::fmt(r.mops(), 3));
    }
    table.add_row(std::move(row));
  }
  // Restore the default table for any subsequent user of the process.
  HashedCounterTable::instance().configure(HashedCounterTable::kDefaultSlots,
                                           1);

  table.print("Figure 5: flit-HT size sweep (automatic BST, 10K keys)");
  table.print_csv("fig5");
  std::printf(
      "\nExpected paper shape: 0%% updates degrade slowly with table size;\n"
      "4KB collapses at >=5%% updates (packed-counter cache-line "
      "collisions);\n1MB is the sweet spot used for all other figures.\n");
  return 0;
}
