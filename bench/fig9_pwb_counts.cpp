// Figure 9 — number of pwb instructions per operation.
//
// Paper: hash table with 10K keys and list with 128 keys, 5% updates, for
// each implementation and durability method. Expected shape: pwbs/op is
// approximately equal across FliT implementations (redundant flushes from
// still-tagged locations almost never happen); the plain version issues
// dramatically more; the automatic small list shows extra pwbs for
// flit-adjacent / link-and-persist on invalidating-clwb hardware (the
// effect shrinks with the non-invalidating simulated backend).
#include "common.hpp"
#include "ds/harris_list.hpp"
#include "ds/hash_table.hpp"

namespace {

using namespace flit;
using namespace flit::bench;
using K = std::int64_t;

template <class W, class M>
using ListOf = ds::HarrisList<K, K, W, M>;
template <class W, class M>
using TableOf = ds::HashTable<K, K, W, M>;

template <template <class, class> class DsOf, class Method, bool kLap>
void run_methods(const char* ds, const char* method,
                 const WorkloadConfig& cfg, auto make, Table& table) {
  const double plain =
      run_point([&] { return make.template operator()<
                          DsOf<PlainWords, Method>>(); },
                cfg)
          .pwbs_per_op();
  const double adj =
      run_point([&] { return make.template operator()<
                          DsOf<AdjacentWords, Method>>(); },
                cfg)
          .pwbs_per_op();
  const double ht =
      run_point([&] { return make.template operator()<
                          DsOf<HashedWords, Method>>(); },
                cfg)
          .pwbs_per_op();
  std::string lap = "n/a";
  if constexpr (kLap) {
    lap = Table::fmt(run_point([&] { return make.template operator()<
                                         DsOf<LapWords, Method>>(); },
                               cfg)
                         .pwbs_per_op(),
                     3);
  }
  table.add_row({ds, method, Table::fmt(plain, 3), Table::fmt(adj, 3),
                 Table::fmt(ht, 3), lap});
}

struct MakeDefault {
  template <class S>
  S operator()() const {
    return S();
  }
};
struct MakeBuckets {
  std::size_t n;
  template <class S>
  S operator()() const {
    return S(n);
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  const std::uint64_t size = 10'000;
  const std::uint64_t list_size = 128;

  Table table({"structure", "method", "plain", "flit-adjacent", "flit-HT",
               "link-and-persist"});

  run_methods<TableOf, Automatic, true>(
      "hashtable-10K", "automatic", env.config(5.0, size),
      MakeBuckets{size}, table);
  run_methods<TableOf, NVTraverse, true>(
      "hashtable-10K", "nvtraverse", env.config(5.0, size),
      MakeBuckets{size}, table);
  run_methods<TableOf, Manual, true>("hashtable-10K", "manual",
                                     env.config(5.0, size),
                                     MakeBuckets{size}, table);
  run_methods<ListOf, Automatic, true>("list-128", "automatic",
                                       env.config(5.0, list_size),
                                       MakeDefault{}, table);
  run_methods<ListOf, NVTraverse, true>("list-128", "nvtraverse",
                                        env.config(5.0, list_size),
                                        MakeDefault{}, table);
  run_methods<ListOf, Manual, true>("list-128", "manual",
                                    env.config(5.0, list_size),
                                    MakeDefault{}, table);

  table.print("Figure 9: pwb instructions per operation (5% updates)");
  table.print_csv("fig9");
  std::printf(
      "\nExpected paper shape: FliT variants issue roughly equal pwbs/op\n"
      "and far fewer than plain; redundant flush-if-tagged flushes are\n"
      "rare.\n");
  return 0;
}
