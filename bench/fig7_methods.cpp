// Figure 7 — the full durability-method × implementation grid.
//
// Paper: 44 threads, 5% updates, small structures (10K keys; 128-key
// linked list). For each of the four structures and each durability method
// (automatic / NVtraverse / manual) it compares plain pwb placement,
// flit-adjacent, flit-HT, and link-and-persist (where representable);
// the dotted line is the non-persistent upper bound.
//
// Expected shape: FliT >= 2.17x over plain everywhere (up to ~100x in the
// automatic settings); optimized methods still beat automatic when both
// use FliT; link-and-persist ~= flit-adjacent; no link-and-persist column
// for the BST (it uses both pointer bits).
#include "common.hpp"
#include "ds/harris_list.hpp"
#include "ds/hash_table.hpp"
#include "ds/natarajan_bst.hpp"
#include "ds/skiplist.hpp"

namespace {

using namespace flit;
using namespace flit::bench;
using K = std::int64_t;

struct RowOut {
  double plain = 0, adj = 0, ht = 0, lap = -1, none = 0;
};

template <template <class, class> class DsOf, class Method, bool kLap>
RowOut run_row(const WorkloadConfig& cfg, auto make) {
  RowOut out;
  out.plain = run_point([&] { return make.template operator()<
                                  DsOf<PlainWords, Method>>(); },
                        cfg)
                  .mops();
  out.adj = run_point([&] { return make.template operator()<
                                DsOf<AdjacentWords, Method>>(); },
                      cfg)
                .mops();
  out.ht = run_point([&] { return make.template operator()<
                               DsOf<HashedWords, Method>>(); },
                     cfg)
               .mops();
  if constexpr (kLap) {
    out.lap = run_point([&] { return make.template operator()<
                                  DsOf<LapWords, Method>>(); },
                        cfg)
                  .mops();
  }
  out.none = run_point([&] { return make.template operator()<
                                 DsOf<VolatileWords, Automatic>>(); },
                       cfg)
                 .mops();
  return out;
}

template <template <class, class> class DsOf, bool kLap>
void run_ds(const char* name, const WorkloadConfig& cfg, auto make,
            Table& table) {
  auto add = [&](const char* method, const RowOut& r) {
    table.add_row({name, method, Table::fmt(r.plain, 3),
                   Table::fmt(r.adj, 3), Table::fmt(r.ht, 3),
                   r.lap < 0 ? std::string("n/a") : Table::fmt(r.lap, 3),
                   Table::fmt(r.none, 3)});
  };
  add("automatic", run_row<DsOf, Automatic, kLap>(cfg, make));
  add("nvtraverse", run_row<DsOf, NVTraverse, kLap>(cfg, make));
  add("manual", run_row<DsOf, Manual, kLap>(cfg, make));
}

template <class W, class M>
using ListOf = ds::HarrisList<K, K, W, M>;
template <class W, class M>
using BstOf = ds::NatarajanBst<K, K, W, M>;
template <class W, class M>
using SkipOf = ds::SkipList<K, K, W, M>;
template <class W, class M>
using TableOf = ds::HashTable<K, K, W, M>;

struct MakeDefault {
  template <class S>
  S operator()() const {
    return S();
  }
};
struct MakeBuckets {
  std::size_t n;
  template <class S>
  S operator()() const {
    return S(n);
  }
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  const std::uint64_t size = 10'000;
  const std::uint64_t list_size = 128;

  Table table({"structure", "method", "plain", "flit-adjacent", "flit-HT",
               "link-and-persist", "non-persistent"});

  run_ds<BstOf, /*lap=*/false>("bst-10K", env.config(5.0, size),
                               MakeDefault{}, table);
  run_ds<TableOf, /*lap=*/true>("hashtable-10K", env.config(5.0, size),
                                MakeBuckets{size}, table);
  run_ds<ListOf, /*lap=*/true>("list-128", env.config(5.0, list_size),
                               MakeDefault{}, table);
  run_ds<SkipOf, /*lap=*/true>("skiplist-10K", env.config(5.0, size),
                               MakeDefault{}, table);

  table.print("Figure 7: durability methods x implementations "
              "(5% updates, Mops/s)");
  table.print_csv("fig7");
  std::printf(
      "\nExpected paper shape: every FliT column beats plain (>=2.17x);\n"
      "automatic gains the most; manual+FliT >= nvtraverse+FliT >=\n"
      "automatic+FliT; link-and-persist ~= flit-adjacent; BST has no\n"
      "link-and-persist (both pointer bits are control bits).\n");
  return 0;
}
