// Ablations A & B — counter-placement design choices beyond the paper's
// evaluated settings (DESIGN.md, experiment index).
//
//   A (paper §8 future work): one flit-counter per *data* cache line
//     (PerLinePolicy) vs per-word hashed vs adjacent. Per-line tagging
//     aliases all words of a node onto one counter: fewer counters, but
//     sibling-word p-stores can force readers of the line to flush.
//   B (paper §5.1): packed counters (8 per word) vs unpacked (one per
//     table cache line) — the false-sharing trade-off at equal slot count.
#include "common.hpp"
#include "ds/natarajan_bst.hpp"

namespace {

using namespace flit;
using namespace flit::bench;

template <class W>
using Bst = ds::NatarajanBst<std::int64_t, std::int64_t, W, Automatic>;

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = BenchEnv::init(argc, argv);
  const std::uint64_t size = 10'000;

  {
    Table table({"placement", "5%-updates Mops", "50%-updates Mops",
                 "pwbs/op @5%"});
    for (const char* which : {"adjacent", "hashed-word", "per-line"}) {
      std::vector<std::string> row{which};
      double pwbs5 = 0;
      for (const double upd : {5.0, 50.0}) {
        RunResult r;
        const WorkloadConfig cfg = env.config(upd, size);
        if (std::string(which) == "adjacent") {
          r = run_point([] { return Bst<AdjacentWords>(); }, cfg);
        } else if (std::string(which) == "hashed-word") {
          r = run_point([] { return Bst<HashedWords>(); }, cfg);
        } else {
          r = run_point([] { return Bst<PerLineWords>(); }, cfg);
        }
        row.push_back(Table::fmt(r.mops(), 3));
        if (upd == 5.0) pwbs5 = r.pwbs_per_op();
      }
      row.push_back(Table::fmt(pwbs5, 3));
      table.add_row(std::move(row));
    }
    table.print("Ablation A: counter granularity (automatic BST, 10K keys)");
    table.print_csv("ablA");
  }

  {
    Table table({"layout", "slots", "footprint", "50%-updates Mops"});
    for (const std::size_t stride : {std::size_t{1}, std::size_t{64}}) {
      for (const std::size_t slots : {std::size_t{4} << 10,
                                      std::size_t{1} << 20}) {
        HashedCounterTable::instance().configure(slots, stride);
        const RunResult r =
            run_point([] { return Bst<HashedWords>(); },
                      env.config(50.0, size));
        char foot[32];
        std::snprintf(foot, sizeof(foot), "%zuKB",
                      HashedCounterTable::instance().footprint_bytes() /
                          1024);
        table.add_row({stride == 1 ? "packed (8/word)" : "unpacked (1/line)",
                       Table::fmt_u(slots), foot, Table::fmt(r.mops(), 3)});
      }
    }
    HashedCounterTable::instance().configure(
        HashedCounterTable::kDefaultSlots, 1);
    table.print("Ablation B: counter packing / false sharing "
                "(automatic BST, 50% updates)");
    table.print_csv("ablB");
  }

  std::printf(
      "\nExpected shape: per-line tagging trades extra reader flushes for\n"
      "fewer counters; a tiny packed table suffers cache-line collisions\n"
      "that the unpacked layout avoids at 64x the space.\n");
  return 0;
}
